//! Retry with capped exponential backoff and a virtual-time deadline.
//!
//! The simulation never sleeps: backoff delays are *charged against a
//! virtual deadline budget* instead of being slept. That keeps every retry
//! loop bounded and deterministic while still modelling the real trade-off
//! (more retries cost wall-clock time the caller may not have).

use std::fmt;

/// Classifies errors into transient (retry may help) and permanent.
pub trait Transient {
    /// True if retrying the failed operation could plausibly succeed.
    fn is_transient(&self) -> bool;
}

/// Capped exponential backoff with deterministic jitter.
///
/// The delay sequence is monotone non-decreasing, capped at
/// [`BackoffSchedule::cap_ms`], and fully determined by the schedule's
/// fields (same schedule → same delays, always).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// First delay, milliseconds.
    pub base_ms: u64,
    /// Multiplier between attempts (clamped to ≥ 1).
    pub factor: u32,
    /// Upper bound on any single delay, milliseconds.
    pub cap_ms: u64,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for BackoffSchedule {
    fn default() -> Self {
        BackoffSchedule {
            base_ms: 50,
            factor: 2,
            cap_ms: 5_000,
            jitter_seed: 0x5eed,
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BackoffSchedule {
    /// The delay before retry number `attempt` (0-based), milliseconds.
    ///
    /// Computed as the running maximum of jittered exponential delays, then
    /// capped — which makes the sequence monotone non-decreasing by
    /// construction.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let factor = u64::from(self.factor.max(1));
        let base = self.base_ms.max(1);
        let mut running_max = 0u64;
        let mut raw = base;
        for k in 0..=attempt {
            let jitter = splitmix(self.jitter_seed.wrapping_add(u64::from(k))) % base;
            running_max = running_max.max(raw.saturating_add(jitter));
            raw = raw.saturating_mul(factor).min(self.cap_ms.max(1));
        }
        running_max.min(self.cap_ms.max(1))
    }
}

/// Why a retried operation ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryError<E> {
    /// The error was permanent; retrying would not help.
    Permanent(E),
    /// All attempts failed with transient errors.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last transient error.
        last: E,
    },
    /// The next backoff delay would have blown the deadline budget.
    DeadlineExceeded {
        /// Attempts made before giving up.
        attempts: u32,
        /// Virtual time charged so far, milliseconds.
        elapsed_ms: u64,
        /// The last transient error.
        last: E,
    },
}

impl<E> RetryError<E> {
    /// The underlying error, whichever way the retry ended.
    pub fn into_inner(self) -> E {
        match self {
            RetryError::Permanent(e)
            | RetryError::Exhausted { last: e, .. }
            | RetryError::DeadlineExceeded { last: e, .. } => e,
        }
    }
}

impl<E: fmt::Display> fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryError::Permanent(e) => write!(f, "permanent failure: {e}"),
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            RetryError::DeadlineExceeded {
                attempts,
                elapsed_ms,
                last,
            } => write!(
                f,
                "deadline exceeded after {attempts} attempts ({elapsed_ms} ms): {last}"
            ),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for RetryError<E> {}

/// What a successful retried operation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryReport {
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Virtual backoff time charged, milliseconds.
    pub elapsed_ms: u64,
}

/// Bounded retry: at most `max_attempts` tries, charging backoff delays
/// against a virtual `deadline_ms` budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts (clamped to ≥ 1).
    pub max_attempts: u32,
    /// Virtual-time budget for backoff delays, milliseconds.
    pub deadline_ms: u64,
    /// The backoff schedule between attempts.
    pub backoff: BackoffSchedule,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            deadline_ms: 30_000,
            backoff: BackoffSchedule::default(),
        }
    }
}

impl RetryPolicy {
    /// Runs `op` until it succeeds, fails permanently, exhausts attempts,
    /// or would exceed the deadline budget. `op` receives the 0-based
    /// attempt number.
    ///
    /// # Errors
    ///
    /// [`RetryError`] describing how the retry ended.
    pub fn run<T, E: Transient>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<(T, RetryReport), RetryError<E>> {
        let max_attempts = self.max_attempts.max(1);
        let mut elapsed_ms = 0u64;
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(value) => {
                    return Ok((
                        value,
                        RetryReport {
                            attempts: attempt + 1,
                            elapsed_ms,
                        },
                    ));
                }
                Err(e) if !e.is_transient() => return Err(RetryError::Permanent(e)),
                Err(e) => {
                    if attempt + 1 >= max_attempts {
                        return Err(RetryError::Exhausted {
                            attempts: attempt + 1,
                            last: e,
                        });
                    }
                    let delay = self.backoff.delay_ms(attempt);
                    if elapsed_ms.saturating_add(delay) > self.deadline_ms {
                        return Err(RetryError::DeadlineExceeded {
                            attempts: attempt + 1,
                            elapsed_ms,
                            last: e,
                        });
                    }
                    elapsed_ms += delay;
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Flaky(bool);

    impl Transient for Flaky {
        fn is_transient(&self) -> bool {
            self.0
        }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::default();
        let (value, report) = policy
            .run(|attempt| {
                if attempt < 3 {
                    Err(Flaky(true))
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(value, 3);
        assert_eq!(report.attempts, 4);
        assert!(report.elapsed_ms > 0);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let result: Result<((), _), _> = policy.run(|_| {
            calls += 1;
            Err(Flaky(false))
        });
        assert!(matches!(result, Err(RetryError::Permanent(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn attempts_are_bounded() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let result: Result<((), _), _> = policy.run(|_| {
            calls += 1;
            Err(Flaky(true))
        });
        assert!(matches!(
            result,
            Err(RetryError::Exhausted { attempts: 3, .. })
        ));
        assert_eq!(calls, 3);
    }

    #[test]
    fn deadline_budget_is_respected() {
        let policy = RetryPolicy {
            max_attempts: 100,
            deadline_ms: 120,
            backoff: BackoffSchedule {
                base_ms: 50,
                factor: 2,
                cap_ms: 1_000,
                jitter_seed: 9,
            },
        };
        let result: Result<((), _), _> = policy.run(|_| Err(Flaky(true)));
        match result {
            Err(RetryError::DeadlineExceeded {
                attempts,
                elapsed_ms,
                ..
            }) => {
                assert!(attempts < 100, "deadline should cut retries short");
                assert!(elapsed_ms <= 120);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_deterministic() {
        let schedule = BackoffSchedule::default();
        let a: Vec<u64> = (0..10).map(|k| schedule.delay_ms(k)).collect();
        let b: Vec<u64> = (0..10).map(|k| schedule.delay_ms(k)).collect();
        assert_eq!(a, b);
    }
}
