//! Resilience primitives for the TIPPERS simulation: a deterministic fault
//! plane, retry with capped backoff under a deadline budget, per-registry
//! circuit breakers, and a health monitor for fail-closed reporting.
//!
//! The paper's architecture (Figure 1) spans three loosely-coupled parties —
//! registries, assistants, and the BMS — connected by an unreliable
//! discovery network. This crate provides the machinery to *test* that
//! coupling honestly:
//!
//! * [`FaultPlan`] — named injection points ([`FaultPoint`]) armed with
//!   seeded probabilities, so any failure scenario replays bit-for-bit from
//!   its seed.
//! * [`RetryPolicy`] / [`BackoffSchedule`] — bounded retry with
//!   deterministic jitter and a *virtual-time* deadline budget (the
//!   simulation never sleeps).
//! * [`CircuitBreaker`] — closed → open → half-open per-registry admission,
//!   so a dead registry stops eating the retry budget.
//! * [`HealthMonitor`] — degraded-mode tracking that the BMS surfaces when
//!   enforcement fails closed.
//!
//! On top of those sit the overload-control ("admission") primitives —
//! every one driven by the same explicit virtual time ([`VirtualClock`]),
//! so storms replay deterministically:
//!
//! * [`TokenBucket`] / [`SlidingWindow`] / [`AimdLimiter`] — rate and
//!   adaptive concurrency limiting.
//! * [`Mailbox`] — bounded queues with explicit backpressure and
//!   deadline-aware delivery.
//! * [`AdmissionController`] — priority-classed admission
//!   (`Emergency > Interactive > Batch`) with the invariants that
//!   Emergency is never shed and sheds fail closed.
//! * [`BrownoutController`] — stepwise degradation with hysteresis.
//!
//! Finally, [`sim`] turns whole multi-threaded runtimes into
//! deterministic simulations: an executor-agnostic thread/channel facade
//! plus a seeded cooperative scheduler with virtual time, a schedule
//! explorer, and a delta-debugging shrinker that reduces a failing
//! interleaving to a replayable JSON artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod brownout;
mod clock;
mod fault;
mod health;
mod limiter;
mod nemesis;
mod queue;
mod retry;
mod shed;
pub mod sim;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use brownout::{BrownoutConfig, BrownoutController, BrownoutLevel};
pub use clock::{ms_from_secs, VirtualClock, MILLIS_PER_SEC};
pub use fault::{FaultPlan, FaultPoint};
pub use health::{HealthMonitor, HealthStatus};
pub use limiter::{AimdConfig, AimdLimiter, SlidingWindow, TokenBucket, TokenBucketConfig};
pub use nemesis::{Nemesis, NemesisAction, StormAction};
pub use queue::{Mailbox, MailboxStats, PushError};
pub use retry::{BackoffSchedule, RetryError, RetryPolicy, RetryReport, Transient};
pub use shed::{AdmissionConfig, AdmissionController, AdmissionStats, Priority, ShedReason};
