//! Resilience primitives for the TIPPERS simulation: a deterministic fault
//! plane, retry with capped backoff under a deadline budget, per-registry
//! circuit breakers, and a health monitor for fail-closed reporting.
//!
//! The paper's architecture (Figure 1) spans three loosely-coupled parties —
//! registries, assistants, and the BMS — connected by an unreliable
//! discovery network. This crate provides the machinery to *test* that
//! coupling honestly:
//!
//! * [`FaultPlan`] — named injection points ([`FaultPoint`]) armed with
//!   seeded probabilities, so any failure scenario replays bit-for-bit from
//!   its seed.
//! * [`RetryPolicy`] / [`BackoffSchedule`] — bounded retry with
//!   deterministic jitter and a *virtual-time* deadline budget (the
//!   simulation never sleeps).
//! * [`CircuitBreaker`] — closed → open → half-open per-registry admission,
//!   so a dead registry stops eating the retry budget.
//! * [`HealthMonitor`] — degraded-mode tracking that the BMS surfaces when
//!   enforcement fails closed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod fault;
mod health;
mod retry;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use fault::{FaultPlan, FaultPoint};
pub use health::{HealthMonitor, HealthStatus};
pub use retry::{BackoffSchedule, RetryError, RetryPolicy, RetryReport, Transient};
