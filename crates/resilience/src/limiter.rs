//! Rate and concurrency limiters, driven by virtual time.
//!
//! Three primitives, all consulted with an explicit `now_ms` (see
//! [`crate::VirtualClock`]) so they compose with the deterministic fault
//! plane:
//!
//! * [`TokenBucket`] — classic leaky-bucket rate limiting: a burst budget
//!   that refills continuously.
//! * [`SlidingWindow`] — an exact trailing-window cap (at most `max`
//!   admissions in *any* trailing window), the stricter shape notification
//!   throttling needs.
//! * [`AimdLimiter`] — an additive-increase / multiplicative-decrease
//!   concurrency limit steered by a latency gradient: while observed
//!   latency stays at or under the target the limit creeps up, and the
//!   first observation over the target cuts it multiplicatively.

use serde::{Deserialize, Serialize};

/// [`TokenBucket`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenBucketConfig {
    /// Maximum burst size, tokens.
    pub capacity: f64,
    /// Continuous refill rate, tokens per virtual second.
    pub refill_per_sec: f64,
}

impl Default for TokenBucketConfig {
    fn default() -> Self {
        TokenBucketConfig {
            capacity: 64.0,
            refill_per_sec: 32.0,
        }
    }
}

/// A token-bucket rate limiter over virtual milliseconds.
///
/// # Examples
///
/// ```
/// use tippers_resilience::{TokenBucket, TokenBucketConfig};
///
/// let mut bucket = TokenBucket::new(
///     TokenBucketConfig { capacity: 2.0, refill_per_sec: 1.0 },
///     0,
/// );
/// assert!(bucket.try_acquire(0, 1.0));
/// assert!(bucket.try_acquire(0, 1.0));
/// assert!(!bucket.try_acquire(0, 1.0)); // burst budget spent
/// assert!(bucket.try_acquire(1_000, 1.0)); // one second refilled one token
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    config: TokenBucketConfig,
    tokens: f64,
    last_ms: i64,
}

impl TokenBucket {
    /// A full bucket as of `now_ms`.
    ///
    /// # Panics
    ///
    /// Panics unless capacity and refill rate are positive.
    pub fn new(config: TokenBucketConfig, now_ms: i64) -> TokenBucket {
        assert!(config.capacity > 0.0, "bucket capacity must be positive");
        assert!(
            config.refill_per_sec > 0.0,
            "bucket refill rate must be positive"
        );
        TokenBucket {
            config,
            tokens: config.capacity,
            last_ms: now_ms,
        }
    }

    fn refill(&mut self, now_ms: i64) {
        if now_ms > self.last_ms {
            let elapsed_secs = (now_ms - self.last_ms) as f64 / 1000.0;
            self.tokens =
                (self.tokens + elapsed_secs * self.config.refill_per_sec).min(self.config.capacity);
            self.last_ms = now_ms;
        }
    }

    /// Takes `cost` tokens if available; `false` leaves the bucket
    /// untouched.
    pub fn try_acquire(&mut self, now_ms: i64, cost: f64) -> bool {
        self.refill(now_ms);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Tokens available at `now_ms` (refills as a side effect).
    pub fn available(&mut self, now_ms: i64) -> f64 {
        self.refill(now_ms);
        self.tokens
    }

    /// The configured burst capacity.
    pub fn capacity(&self) -> f64 {
        self.config.capacity
    }
}

/// An exact trailing-window admission cap: at most `max` admissions in any
/// trailing `window_ms` window — stricter than a token bucket, which
/// permits up to twice its burst inside one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingWindow {
    max: usize,
    window_ms: i64,
    admitted: Vec<i64>,
}

impl SlidingWindow {
    /// At most `max` admissions every `window_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is not positive.
    pub fn new(max: usize, window_ms: i64) -> SlidingWindow {
        assert!(window_ms > 0, "window must be positive");
        SlidingWindow {
            max,
            window_ms,
            admitted: Vec::new(),
        }
    }

    /// True if an admission may happen at `now_ms`; if so, it is recorded.
    pub fn allow(&mut self, now_ms: i64) -> bool {
        self.admitted
            .retain(|&t| now_ms - t < self.window_ms && t <= now_ms);
        if self.admitted.len() < self.max {
            self.admitted.push(now_ms);
            true
        } else {
            false
        }
    }

    /// Admissions recorded in the trailing window ending at `now_ms`.
    pub fn count(&self, now_ms: i64) -> usize {
        self.admitted
            .iter()
            .filter(|&&t| now_ms - t < self.window_ms && t <= now_ms)
            .count()
    }
}

/// [`AimdLimiter`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AimdConfig {
    /// Concurrency floor (the limit never drops below this).
    pub min_limit: u32,
    /// Concurrency ceiling.
    pub max_limit: u32,
    /// Starting limit.
    pub initial_limit: u32,
    /// Latency at or under which the limiter grows, virtual milliseconds.
    pub latency_target_ms: f64,
    /// Additive increase per under-target completion (spread across the
    /// current limit, i.e. roughly +1 per full round of completions).
    pub increase: f64,
    /// Multiplicative decrease factor applied on an over-target
    /// completion, in `(0, 1)`.
    pub decrease_factor: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            min_limit: 1,
            max_limit: 256,
            initial_limit: 16,
            latency_target_ms: 50.0,
            increase: 1.0,
            decrease_factor: 0.7,
        }
    }
}

/// An AIMD adaptive concurrency limiter steered by observed latency.
///
/// Acquire before starting work ([`AimdLimiter::try_acquire`]); report the
/// work's observed latency when it completes ([`AimdLimiter::release`]).
/// Latencies come from the same virtual clock as everything else, so the
/// control loop is fully deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AimdLimiter {
    config: AimdConfig,
    limit: f64,
    in_flight: u32,
    rejections: u64,
}

impl AimdLimiter {
    /// A limiter at its configured initial limit.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive floor, an inverted floor/ceiling pair, or
    /// a decrease factor outside `(0, 1)`.
    pub fn new(config: AimdConfig) -> AimdLimiter {
        assert!(config.min_limit >= 1, "concurrency floor must be >= 1");
        assert!(
            config.min_limit <= config.max_limit,
            "concurrency floor must not exceed the ceiling"
        );
        assert!(
            config.decrease_factor > 0.0 && config.decrease_factor < 1.0,
            "decrease factor must be in (0, 1)"
        );
        AimdLimiter {
            limit: f64::from(
                config
                    .initial_limit
                    .clamp(config.min_limit, config.max_limit),
            ),
            config,
            in_flight: 0,
            rejections: 0,
        }
    }

    /// Admits one unit of work if the in-flight count is under the limit.
    pub fn try_acquire(&mut self) -> bool {
        if u64::from(self.in_flight) < self.limit as u64 {
            self.in_flight += 1;
            true
        } else {
            self.rejections += 1;
            false
        }
    }

    /// Admits one unit of work unconditionally (the Emergency bypass);
    /// the unit still counts as in-flight so the control loop sees it.
    pub fn acquire_unchecked(&mut self) {
        self.in_flight += 1;
    }

    /// Completes one unit of work, steering the limit by its latency:
    /// additive increase at or under the target, multiplicative decrease
    /// over it.
    pub fn release(&mut self, observed_latency_ms: f64) {
        self.in_flight = self.in_flight.saturating_sub(1);
        if observed_latency_ms <= self.config.latency_target_ms {
            self.limit += self.config.increase / self.limit.max(1.0);
        } else {
            self.limit *= self.config.decrease_factor;
        }
        self.limit = self.limit.clamp(
            f64::from(self.config.min_limit),
            f64::from(self.config.max_limit),
        );
    }

    /// The current concurrency limit (floor of the internal estimate).
    pub fn limit(&self) -> u32 {
        self.limit as u32
    }

    /// Units currently in flight.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Admissions refused so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Utilization in `[0, 1]`: in-flight over the current limit.
    pub fn utilization(&self) -> f64 {
        f64::from(self.in_flight) / self.limit.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_caps_bursts_and_refills() {
        let mut b = TokenBucket::new(
            TokenBucketConfig {
                capacity: 4.0,
                refill_per_sec: 2.0,
            },
            0,
        );
        for _ in 0..4 {
            assert!(b.try_acquire(0, 1.0));
        }
        assert!(!b.try_acquire(0, 1.0));
        assert!(b.try_acquire(500, 1.0), "half a second refills one token");
        assert!(!b.try_acquire(500, 1.0));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut b = TokenBucket::new(
            TokenBucketConfig {
                capacity: 2.0,
                refill_per_sec: 100.0,
            },
            0,
        );
        assert!((b.available(1_000_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bucket_rejects_zero_capacity() {
        let _ = TokenBucket::new(
            TokenBucketConfig {
                capacity: 0.0,
                refill_per_sec: 1.0,
            },
            0,
        );
    }

    #[test]
    fn sliding_window_caps_every_trailing_window() {
        let mut w = SlidingWindow::new(2, 600_000);
        assert!(w.allow(0));
        assert!(w.allow(10_000));
        assert!(!w.allow(20_000));
        assert_eq!(w.count(20_000), 2);
        // Exactly one window later the first admission ages out.
        assert!(!w.allow(599_999));
        assert!(w.allow(600_000));
    }

    #[test]
    fn aimd_grows_under_target_and_cuts_over_it() {
        let mut l = AimdLimiter::new(AimdConfig {
            initial_limit: 4,
            latency_target_ms: 10.0,
            ..AimdConfig::default()
        });
        let before = l.limit();
        for _ in 0..20 {
            assert!(l.try_acquire());
            l.release(5.0);
        }
        assert!(l.limit() > before, "under-target latency grows the limit");
        let grown = l.limit();
        assert!(l.try_acquire());
        l.release(500.0);
        assert!(l.limit() < grown, "over-target latency cuts the limit");
    }

    #[test]
    fn aimd_respects_floor_and_ceiling() {
        let mut l = AimdLimiter::new(AimdConfig {
            min_limit: 2,
            max_limit: 8,
            initial_limit: 4,
            ..AimdConfig::default()
        });
        for _ in 0..100 {
            assert!(
                l.try_acquire() || {
                    l.release(1000.0);
                    true
                }
            );
            l.release(1000.0);
        }
        assert!(l.limit() >= 2);
        for _ in 0..1000 {
            if l.try_acquire() {
                l.release(0.0);
            }
        }
        assert!(l.limit() <= 8);
    }

    #[test]
    fn aimd_enforces_concurrency() {
        let mut l = AimdLimiter::new(AimdConfig {
            min_limit: 1,
            max_limit: 4,
            initial_limit: 2,
            ..AimdConfig::default()
        });
        assert!(l.try_acquire());
        assert!(l.try_acquire());
        assert!(!l.try_acquire(), "limit 2 admits two units");
        assert_eq!(l.rejections(), 1);
        l.acquire_unchecked();
        assert_eq!(l.in_flight(), 3, "the bypass still counts in-flight");
        assert!(l.utilization() > 1.0);
    }
}
